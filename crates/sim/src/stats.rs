//! Result types: AMAT decomposition, access breakdown, IPC.

use starnuma_coherence::DirectoryStats;
use starnuma_topology::AccessClass;
use starnuma_types::{Diagnostic, StarNumaError};

/// Statistics collected over one simulated phase.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PhaseStats {
    /// LLC-missing memory accesses, by [`AccessClass`] (Fig. 8c order).
    pub class_counts: [u64; 6],
    /// Sum of analytic unloaded latencies of those accesses, in ns.
    pub unloaded_ns_sum: f64,
    /// Sum of measured (loaded) latencies, in ns.
    pub measured_ns_sum: f64,
    /// Per-class sums of measured latencies, in ns (Fig. 8b diagnostics).
    pub class_measured_ns: [f64; 6],
    /// Accesses that hit in an LLC (filtered before the memory system).
    pub llc_hits: u64,
    /// Instructions retired (per core, summed over cores).
    pub instructions: u64,
    /// Sum over cores of each core's finish time in cycles.
    pub core_cycles_sum: u64,
    /// Number of cores contributing to `core_cycles_sum`.
    pub cores: u64,
    /// Pages whose migration was modeled in this phase's timing window.
    pub migrations_modeled: u64,
}

impl PhaseStats {
    /// Total LLC-missing accesses.
    pub fn memory_accesses(&self) -> u64 {
        self.class_counts.iter().sum()
    }

    /// Measured average memory access time in ns (0 if no accesses).
    pub fn amat_ns(&self) -> f64 {
        let n = self.memory_accesses();
        if n == 0 {
            0.0
        } else {
            self.measured_ns_sum / n as f64
        }
    }

    /// Analytic unloaded AMAT in ns.
    pub fn unloaded_amat_ns(&self) -> f64 {
        let n = self.memory_accesses();
        if n == 0 {
            0.0
        } else {
            self.unloaded_ns_sum / n as f64
        }
    }

    /// Per-core IPC (instructions over mean core finish time).
    pub fn ipc(&self) -> f64 {
        if self.core_cycles_sum == 0 {
            0.0
        } else {
            self.instructions as f64
                / (self.core_cycles_sum as f64 / self.cores.max(1) as f64)
                / self.cores.max(1) as f64
        }
    }

    /// Merges another phase into an aggregate.
    pub fn merge(&mut self, other: &PhaseStats) {
        for i in 0..6 {
            self.class_counts[i] += other.class_counts[i];
        }
        self.unloaded_ns_sum += other.unloaded_ns_sum;
        self.measured_ns_sum += other.measured_ns_sum;
        for i in 0..6 {
            self.class_measured_ns[i] += other.class_measured_ns[i];
        }
        self.llc_hits += other.llc_hits;
        self.instructions += other.instructions;
        self.core_cycles_sum += other.core_cycles_sum;
        self.cores += other.cores;
        self.migrations_modeled += other.migrations_modeled;
    }
}

/// Aggregated result of a full multi-phase run.
///
/// Derives `PartialEq` so determinism tests can assert two same-seed runs
/// are bit-identical end to end.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// Per-phase statistics, in order.
    pub phases: Vec<PhaseStats>,
    /// Per-core IPC aggregated across phases.
    pub ipc: f64,
    /// Measured AMAT in ns (Fig. 8b total).
    pub amat_ns: f64,
    /// Unloaded-latency component of AMAT in ns (Fig. 8b light bar).
    pub unloaded_amat_ns: f64,
    /// Contention-delay component in ns (`amat_ns − unloaded_amat_ns`).
    pub contention_ns: f64,
    /// Access-type fractions in [`AccessClass::ALL`] order (Fig. 8c).
    pub class_fracs: [f64; 6],
    /// Mean measured latency per class in ns (0 where a class is empty).
    pub class_mean_ns: [f64; 6],
    /// Total pages migrated across the run (full plans, step-B semantics).
    pub pages_migrated: u64,
    /// Pages migrated into the pool (Table IV numerator).
    pub pages_to_pool: u64,
    /// Aggregated coherence-directory statistics.
    pub directory: DirectoryStats,
    /// Effective LLC MPKI observed (memory accesses per kilo-instruction).
    pub mpki: f64,
    /// §V-F replication statistics, when replication was enabled.
    pub replication: Option<starnuma_migration::ReplicationStats>,
}

impl RunResult {
    /// Builds an aggregate from per-phase stats and migration totals.
    ///
    /// # Errors
    ///
    /// Returns [`StarNumaError::InvalidModel`] with an `SN107` diagnostic
    /// when `phases` is empty: an empty run has no accesses or cycles, so
    /// every derived ratio (`amat_ns`, `ipc`, `mpki`) would silently
    /// degenerate to zero and masquerade as a measurement.
    pub fn from_phases(
        phases: Vec<PhaseStats>,
        pages_migrated: u64,
        pages_to_pool: u64,
        directory: DirectoryStats,
    ) -> Result<Self, StarNumaError> {
        if phases.is_empty() {
            return Err(StarNumaError::InvalidModel(vec![Diagnostic::error(
                "SN107",
                "RunResult::from_phases",
                "run produced no phase statistics; AMAT/IPC/MPKI are undefined",
                "configure at least one measured phase (phases >= 1 with nonzero \
                 instructions_per_phase)",
            )]));
        }
        let mut agg = PhaseStats::default();
        for p in &phases {
            agg.merge(p);
        }
        let accesses = agg.memory_accesses();
        let mut class_fracs = [0.0; 6];
        let mut class_mean_ns = [0.0; 6];
        if accesses > 0 {
            for (i, &c) in agg.class_counts.iter().enumerate() {
                class_fracs[i] = c as f64 / accesses as f64;
                if c > 0 {
                    class_mean_ns[i] = agg.class_measured_ns[i] / c as f64;
                }
            }
        }
        let amat = agg.amat_ns();
        let unloaded = agg.unloaded_amat_ns();
        // Per-core IPC: each phase contributes `instructions/cores`
        // instructions over `core_cycles_sum/cores` cycles; the merged ratio
        // `instructions / core_cycles_sum` is exactly the per-core IPC.
        let ipc = if agg.core_cycles_sum == 0 {
            0.0
        } else {
            agg.instructions as f64 / agg.core_cycles_sum as f64
        };
        let mpki = if agg.instructions == 0 {
            0.0
        } else {
            accesses as f64 * 1000.0 / agg.instructions as f64
        };
        Ok(RunResult {
            phases,
            ipc,
            class_mean_ns,
            amat_ns: amat,
            unloaded_amat_ns: unloaded,
            contention_ns: (amat - unloaded).max(0.0),
            class_fracs,
            pages_migrated,
            pages_to_pool,
            directory,
            mpki,
            replication: None,
        })
    }

    /// Fraction of accesses in a given class.
    pub fn class_frac(&self, class: AccessClass) -> f64 {
        self.class_fracs[class.index()]
    }

    /// Fraction of this run's migrations that targeted the pool
    /// (Table IV; 0 if nothing migrated).
    pub fn pool_migration_frac(&self) -> f64 {
        if self.pages_migrated == 0 {
            0.0
        } else {
            self.pages_to_pool as f64 / self.pages_migrated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(counts: [u64; 6], unloaded: f64, measured: f64) -> PhaseStats {
        PhaseStats {
            class_counts: counts,
            unloaded_ns_sum: unloaded,
            measured_ns_sum: measured,
            class_measured_ns: [0.0; 6],
            llc_hits: 0,
            instructions: 1000,
            core_cycles_sum: 4000,
            cores: 4,
            migrations_modeled: 0,
        }
    }

    #[test]
    fn amat_decomposition() {
        let p = phase([10, 0, 0, 0, 0, 0], 800.0, 1200.0);
        assert_eq!(p.amat_ns(), 120.0);
        assert_eq!(p.unloaded_amat_ns(), 80.0);
        let r = RunResult::from_phases(vec![p], 0, 0, DirectoryStats::default()).unwrap();
        assert_eq!(r.amat_ns, 120.0);
        assert_eq!(r.contention_ns, 40.0);
        assert_eq!(r.class_fracs[0], 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = phase([1, 2, 3, 0, 0, 0], 100.0, 200.0);
        let b = phase([1, 0, 0, 4, 0, 0], 50.0, 60.0);
        a.merge(&b);
        assert_eq!(a.class_counts, [2, 2, 3, 4, 0, 0]);
        assert_eq!(a.memory_accesses(), 11);
        assert_eq!(a.instructions, 2000);
    }

    #[test]
    fn ipc_from_instructions_and_cycles() {
        let p = phase([0; 6], 0.0, 0.0);
        // 1000 instructions over mean 1000 cycles across 4 cores: the four
        // cores each retired 250 instructions in 1000 cycles → IPC 0.25.
        let r = RunResult::from_phases(vec![p], 0, 0, DirectoryStats::default()).unwrap();
        assert!((r.ipc - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pool_migration_fraction() {
        let r = RunResult::from_phases(
            vec![phase([1, 0, 0, 0, 0, 0], 80.0, 80.0)],
            200,
            160,
            DirectoryStats::default(),
        )
        .unwrap();
        assert!((r.pool_migration_frac() - 0.8).abs() < 1e-12);
        let none = RunResult::from_phases(
            vec![phase([1, 0, 0, 0, 0, 0], 80.0, 80.0)],
            0,
            0,
            DirectoryStats::default(),
        )
        .unwrap();
        assert_eq!(none.pool_migration_frac(), 0.0);
    }

    #[test]
    fn empty_phase_list_is_rejected_with_sn107() {
        let err = RunResult::from_phases(vec![], 0, 0, DirectoryStats::default())
            .expect_err("an empty run must not aggregate");
        let diags = err.diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SN107");
        assert!(err.to_string().contains("SN107"));
    }

    #[test]
    fn class_frac_lookup() {
        let p = phase([3, 1, 0, 0, 0, 0], 0.0, 0.0);
        let r = RunResult::from_phases(vec![p], 0, 0, DirectoryStats::default()).unwrap();
        assert!((r.class_frac(AccessClass::Local) - 0.75).abs() < 1e-12);
        assert!((r.class_frac(AccessClass::OneHop) - 0.25).abs() < 1e-12);
        assert_eq!(r.class_frac(AccessClass::BtPool), 0.0);
    }
}
