//! The multi-step sampling pipeline of §IV-A: trace generation (step A),
//! memory-trace simulation with migration decisions (step B), and timing
//! simulation (step C), phase by phase.

use starnuma_cache::{Tlb, TlbConfig};
use starnuma_migration::{
    static_oracle_placement_with_sharers, MetadataRegion, MigrationCosts, OracleDynamicPolicy,
    PageAccessCounts, PageMap, PolicyConfig, ReplicaMap, ThresholdPolicy,
};
use starnuma_obs::{EventCategory, EventLevel, FieldValue, ObsReport, ObsSink, PhaseCheck};
use starnuma_prof::{ProfScope, Site};
use starnuma_topology::Network;
use starnuma_trace::{TraceGenerator, WorkloadProfile};
use starnuma_types::{CoreId, REGION_PAGES};
use starnuma_types::{Diagnostic, Location, SimRng, StarNumaError};

use crate::config::{MigrationMode, Modality, RunConfig};
use crate::stats::{PhaseStats, RunResult};
use crate::timing::TimingSim;

/// Runs one complete experiment: a workload profile on a system
/// configuration, through warm-up and all phases.
///
/// # Examples
///
/// ```
/// use starnuma_sim::{MigrationMode, RunConfig, Runner};
/// use starnuma_trace::Workload;
///
/// let config = RunConfig {
///     phases: 1,
///     instructions_per_phase: 10_000,
///     warmup_instructions: 0,
///     ..RunConfig::default()
/// };
/// let result = Runner::new(Workload::Poa.profile(), config).run();
/// assert_eq!(result.pages_to_pool, 0); // POA never needs the pool
/// ```
#[derive(Clone, Debug)]
pub struct Runner {
    profile: WorkloadProfile,
    config: RunConfig,
}

impl Runner {
    /// Creates a runner for `profile` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the model fails validation; use [`Runner::try_new`] to get
    /// the findings as structured diagnostics instead.
    pub fn new(profile: WorkloadProfile, config: RunConfig) -> Self {
        // audit:allow(SN001) — documented panicking convenience wrapper.
        Self::try_new(profile, config).expect("invalid model configuration")
    }

    /// Creates a runner after running the Pass 2 model checks.
    ///
    /// # Errors
    ///
    /// Returns [`StarNumaError::InvalidModel`] listing every error-severity
    /// finding of [`Runner::preflight`]; warnings do not block the run.
    pub fn try_new(profile: WorkloadProfile, config: RunConfig) -> Result<Self, StarNumaError> {
        let errors: Vec<Diagnostic> = Self::preflight(&profile, &config)
            .into_iter()
            .filter(Diagnostic::is_error)
            .collect();
        if !errors.is_empty() {
            return Err(StarNumaError::InvalidModel(errors));
        }
        Ok(Runner { profile, config })
    }

    /// All pre-run diagnostics for `profile` under `config`, warnings
    /// included: [`RunConfig::diagnostics`] plus the workload-dependent
    /// `SN102` capacity check (a pool smaller than the workload's hot set
    /// forces socket-to-socket fallback migrations).
    pub fn preflight(profile: &WorkloadProfile, config: &RunConfig) -> Vec<Diagnostic> {
        let mut out = config.diagnostics();
        if config.params.has_pool && config.pool_capacity_frac.is_finite() {
            let cap = config.pool_capacity_pages(profile.footprint_pages);
            let hot = (profile.footprint_pages as f64 * profile.hot_page_frac).round() as u64;
            if cap < hot {
                out.push(Diagnostic::warning(
                    "SN102",
                    "RunConfig.pool_capacity_frac",
                    format!(
                        "pool capacity ({cap} pages) is below the workload's hot set (~{hot} pages)"
                    ),
                    "raise pool_capacity_frac, or expect socket-to-socket fallback migrations",
                ));
            }
        }
        out
    }

    /// Executes the run and aggregates the results.
    pub fn run(self) -> RunResult {
        self.run_observed(&mut ObsSink::disabled())
    }

    /// Executes the run with full observability: per-socket/per-class
    /// latency histograms, phase-barrier substrate counters, and the
    /// structured event journal. Returns the result alongside the report.
    pub fn run_with_obs(self) -> (RunResult, ObsReport) {
        self.run_with_obs_faulted(None)
    }

    /// [`Runner::run_with_obs`], optionally arming a one-shot injected
    /// monitor fault (`Some(monitor_name)`) before the run starts — the
    /// deterministic way to prove the violation path fires end to end.
    pub fn run_with_obs_faulted(self, fault: Option<&str>) -> (RunResult, ObsReport) {
        let mut obs = ObsSink::enabled(
            self.config.params.num_sockets,
            crate::access_class_labels(),
            starnuma_obs::DEFAULT_JOURNAL_CAPACITY,
        );
        if let Some(monitor) = fault {
            obs.arm_monitor_fault(monitor);
        }
        let result = self.run_observed(&mut obs);
        (result, obs.finish())
    }

    /// Executes the run, recording into the caller's sink. With a
    /// disabled sink this is exactly [`Runner::run`].
    pub fn run_observed(self, obs: &mut ObsSink) -> RunResult {
        let params = &self.config.params;
        let n_sockets = params.num_sockets;
        let cps = params.cores_per_socket;
        let fp = self.profile.footprint_pages;
        let pool_cap = self.config.pool_capacity_pages(fp);
        let num_regions = (fp as usize).div_ceil(REGION_PAGES);

        let mut gen = {
            let _prof = ProfScope::enter(Site::TraceGen);
            TraceGenerator::new(&self.profile, n_sockets, cps, self.config.seed)
        };

        // --- Warm-up trace (also used for first-touch placement). ---
        let warmup_trace = if self.config.warmup_instructions > 0 {
            let _prof = ProfScope::enter(Site::TraceGen);
            Some(gen.generate_phase(self.config.warmup_instructions))
        } else {
            None
        };

        // --- Initial placement (step B bootstrap). ---
        let placement_prof = ProfScope::enter(Site::MigrationPolicy);
        let mut map = match self.config.migration {
            MigrationMode::StaticOracle => {
                // Whole-run oracle: tally every phase with a cloned
                // generator (deterministic), then lay out once. The sharing
                // degree comes from the generator's ground truth — the §V-B
                // oracle has a-priori knowledge of the access pattern.
                let mut scout = gen.clone();
                let mut counts = PageAccessCounts::new(fp, n_sockets);
                for _ in 0..self.config.phases {
                    let t = {
                        let _prof = ProfScope::enter(Site::TraceGen);
                        scout.generate_phase(self.config.instructions_per_phase)
                    };
                    counts.merge(&PageAccessCounts::from_trace(&t, fp, n_sockets, cps));
                }
                static_oracle_placement_with_sharers(&counts, pool_cap, 8, |p| {
                    u32::try_from(scout.page_sharers(p).len()).unwrap_or(u32::MAX)
                })
            }
            _ => {
                // True first-touch semantics: a page lives where its first
                // toucher over the *whole run* (warm-up + all phases) sits —
                // a page is not allocated until someone touches it.
                let mut scout = gen.clone();
                let mut combined = warmup_trace.clone().unwrap_or_default();
                for _ in 0..self.config.phases {
                    let t = {
                        let _prof = ProfScope::enter(Site::TraceGen);
                        scout.generate_phase(self.config.instructions_per_phase)
                    };
                    if combined.per_core.is_empty() {
                        combined = t;
                    } else {
                        // Later phases cannot steal first-touch from earlier
                        // ones: offset icounts by a full phase ordering key.
                        for (dst, src) in combined.per_core.iter_mut().zip(t.per_core) {
                            let base = dst.last().map_or(0, |a| a.icount + 1);
                            dst.extend(src.into_iter().map(|mut a| {
                                a.icount += base;
                                a
                            }));
                        }
                    }
                }
                PageMap::first_touch(fp, pool_cap, &combined, cps, n_sockets)
            }
        };
        drop(placement_prof);

        // --- Hardware models. --- (Constructing the interconnect, LLCs,
        // and directory is a fixed setup cost; charge it to the timing
        // site so short runs still attribute their wall time.)
        let model_prof = ProfScope::enter(Site::Timing);
        let net = Network::new(params);
        let mut sim = TimingSim::new(net, MigrationCosts::paper());
        sim.set_light_cpi(self.profile.base_cpi());
        drop(model_prof);

        // --- Tracking + policy state. ---
        let (t0, tracking) = match self.config.migration {
            MigrationMode::Threshold { t0 } => (t0, true),
            _ => (false, false),
        };
        let mean_region_accesses = (self.config.instructions_per_phase as f64 * self.profile.mpki
            / 1000.0
            * (n_sockets * cps) as f64
            / num_regions as f64) as u64;
        let mut policy_cfg = if t0 {
            PolicyConfig::t0(u32::try_from(n_sockets).unwrap_or(u32::MAX))
        } else {
            PolicyConfig::t16_scaled(mean_region_accesses.max(2))
        };
        policy_cfg.migration_limit_pages = self.config.migration_limit_pages;
        let mut policy = ThresholdPolicy::new(policy_cfg, num_regions, params.has_pool);
        let mut oracle = OracleDynamicPolicy::new(
            ((self.config.instructions_per_phase as f64 * self.profile.mpki / 1000.0
                * (n_sockets * cps) as f64)
                / fp as f64)
                // audit:allow(SN009) float-to-int `as` saturates deterministically.
                .max(2.0) as u32,
            self.config.migration_limit_pages,
        );
        // The TLB's *reach relative to the per-phase working set* is what
        // drives the annex-flush rate: the paper's 1536-entry TLB churns
        // constantly under billion-instruction phases. At the scaled-down
        // window lengths the TLB must scale too, or counters never flush
        // (no evictions) and the tracker starves.
        let tlb_cfg = TlbConfig {
            entries: 64,
            counter_bits: if t0 { 0 } else { 16 },
        };
        let tracker_prof = ProfScope::enter(Site::Tlb);
        let mut tlbs: Vec<Tlb> = (0..n_sockets * cps).map(|_| Tlb::new(tlb_cfg)).collect();
        let mut meta = MetadataRegion::new(num_regions, n_sockets, tlb_cfg.counter_bits);
        drop(tracker_prof);
        let mut rng = SimRng::seed_from_u64(self.config.seed ^ 0x6d69_6772);

        // --- Warm-up (populates LLCs/directory; no stats, no migration). ---
        if let Some(w) = &warmup_trace {
            sim.run_phase(
                w,
                &mut map,
                &[],
                self.profile.base_cpi(),
                self.profile.mlp,
                self.config.warmup_instructions,
                self.config.modality,
                false,
            );
            sim.reset_servers();
        }

        // --- Phase loop. ---
        let mut replicas = self
            .config
            .replication
            .map(|cfg| ReplicaMap::new(n_sockets, cfg));
        let mut ablation_migrated = 0u64;
        let mut ablation_to_pool = 0u64;
        let mut phase_stats: Vec<PhaseStats> = Vec::with_capacity(self.config.phases);
        // Cumulative-substrate snapshots so phase barriers can export
        // per-phase deltas (LLCs and the directory persist across phases).
        let mut prev_llc = sim.llc_stats();
        let mut prev_dir = sim.directory_stats();
        for _phase in 0..self.config.phases {
            let phase_no = u32::try_from(_phase).unwrap_or(u32::MAX);
            obs.begin_phase(phase_no);
            starnuma_prof::set_phase(phase_no);
            let trace = {
                let _prof = ProfScope::enter(Site::TraceGen);
                gen.generate_phase(self.config.instructions_per_phase)
            };

            // Snapshot the phase-start placement before step B mutates the
            // live map (the checkpoint of §IV-A2).
            let snapshot = {
                let _prof = ProfScope::enter(Site::Checkpoint);
                map.clone()
            };

            // Step B: tracking + migration decisions.
            let step_b_prof = ProfScope::enter(Site::MigrationPolicy);
            let plan = match self.config.migration {
                MigrationMode::Threshold { .. } if tracking => {
                    {
                        let _prof = ProfScope::enter(Site::Tlb);
                        for tlb in &mut tlbs {
                            tlb.set_markers();
                        }
                        for (core_idx, stream) in trace.per_core.iter().enumerate() {
                            let core = u32::try_from(core_idx).unwrap_or(u32::MAX);
                            let socket = CoreId::new(core).socket(cps);
                            let tlb = &mut tlbs[core_idx];
                            for a in stream {
                                for f in tlb.record_llc_miss(a.addr.page()) {
                                    if f.page.pfn() < fp {
                                        meta.record(f.page.region(), socket, f.count);
                                    }
                                }
                            }
                        }
                    }
                    let plan = policy.decide_observed(&meta, &mut map, &mut rng, obs);
                    meta.reset();
                    plan
                }
                MigrationMode::OracleDynamic => {
                    let counts = PageAccessCounts::from_trace(&trace, fp, n_sockets, cps);
                    oracle.decide(&counts, &mut map)
                }
                MigrationMode::Ablation(ablation) => {
                    // Perfect region-level tracking: only the selection
                    // criterion is under test.
                    let mut perfect = MetadataRegion::new(num_regions, n_sockets, 16);
                    for a in trace.iter() {
                        perfect.record(a.addr.page().region(), a.core.socket(cps), 1);
                    }
                    let plan = ablation.decide(
                        &perfect,
                        &mut map,
                        self.config.migration_limit_pages,
                        &mut rng,
                    );
                    ablation_migrated += plan.total();
                    ablation_to_pool +=
                        plan.moves.iter().filter(|m| m.to == Location::Pool).count() as u64;
                    plan
                }
                _ => Default::default(),
            };
            drop(step_b_prof);

            // §V-F replication decisions (perfect region tracking: which
            // regions were read-only and widely shared this phase).
            if let Some(reps) = &mut replicas {
                let _prof = ProfScope::enter(Site::MigrationPolicy);
                let mut perfect = MetadataRegion::new(num_regions, n_sockets, 16);
                for a in trace.iter() {
                    let region = a.addr.page().region();
                    perfect.record(region, a.core.socket(cps), 1);
                    if a.kind.is_write() {
                        perfect.mark_written(region);
                    }
                }
                reps.decide(&perfect);
            }

            // Step C: timing simulation from the phase-start snapshot, with
            // the first `modeled_migration_fraction` of the plan in flight.
            let mut timing_map = snapshot;
            // The initiator core spends 3 k cycles per migrated page; at the
            // paper's scale whole plans fit inside a billion-cycle phase, but
            // scaled-down windows cannot absorb them — so, exactly like the
            // paper's timing windows (which cover the first 10 % of each
            // phase, §IV-C), model the prefix of the plan whose initiator
            // schedule fits in ~10 % of the phase, and let the rest take
            // effect between phases.
            let phase_cycles = self.config.instructions_per_phase as f64 * self.profile.base_cpi();
            let budget_pages = (phase_cycles * 0.1 / 3_000.0).floor() as usize;
            let modeled_count = ((plan.moves.len() as f64 * self.config.modeled_migration_fraction)
                .round() as usize)
                .min(plan.moves.len())
                .min(budget_pages);
            obs.event(
                EventLevel::Info,
                EventCategory::Checkpoint,
                "phase_checkpoint",
                || {
                    vec![
                        ("edge", FieldValue::Str("begin".to_string())),
                        ("planned_moves", FieldValue::U64(plan.moves.len() as u64)),
                        ("modeled_moves", FieldValue::U64(modeled_count as u64)),
                        ("budget_pages", FieldValue::U64(budget_pages as u64)),
                    ]
                },
            );
            let stats = sim.run_phase_observed(
                &trace,
                &mut timing_map,
                &plan.moves[..modeled_count],
                self.profile.base_cpi(),
                self.profile.mlp,
                self.config.instructions_per_phase,
                self.config.modality,
                true,
                replicas.as_mut(),
                obs,
            );
            // Mixed modality: regulate next phase's light injection rate by
            // this phase's measured IPC (§IV-B).
            if let Modality::Mixed { .. } = self.config.modality {
                let ipc = stats.ipc();
                if ipc > 0.0 {
                    sim.set_light_cpi(1.0 / ipc);
                }
            }
            // Phase barrier: pour the substrate counters into this phase's
            // frame (links/DRAM reset each phase, so their stats *are* the
            // phase deltas; LLCs and directory accumulate, so subtract).
            if obs.is_enabled() {
                let _prof = ProfScope::enter(Site::ObsExport);
                let llc_now = sim.llc_stats();
                let dir_now = sim.directory_stats();
                // The cumulative substrates must never count backwards —
                // checked before the saturating-looking subtractions below
                // would hide a regression by underflowing.
                let substrate_counters_monotone = llc_now.hits >= prev_llc.hits
                    && llc_now.misses >= prev_llc.misses
                    && llc_now.writebacks >= prev_llc.writebacks
                    && dir_now.transactions >= prev_dir.transactions
                    && dir_now.pool_transactions >= prev_dir.pool_transactions
                    && dir_now.bt_socket >= prev_dir.bt_socket
                    && dir_now.bt_pool >= prev_dir.bt_pool
                    && dir_now.invalidations >= prev_dir.invalidations
                    && dir_now.writebacks >= prev_dir.writebacks;
                obs.observe(
                    "llc",
                    &starnuma_cache::CacheStats {
                        hits: llc_now.hits.saturating_sub(prev_llc.hits),
                        misses: llc_now.misses.saturating_sub(prev_llc.misses),
                        writebacks: llc_now.writebacks.saturating_sub(prev_llc.writebacks),
                    },
                );
                prev_llc = llc_now;
                obs.observe(
                    "dir",
                    &starnuma_coherence::DirectoryStats {
                        transactions: dir_now.transactions.saturating_sub(prev_dir.transactions),
                        pool_transactions: dir_now
                            .pool_transactions
                            .saturating_sub(prev_dir.pool_transactions),
                        bt_socket: dir_now.bt_socket.saturating_sub(prev_dir.bt_socket),
                        bt_pool: dir_now.bt_pool.saturating_sub(prev_dir.bt_pool),
                        invalidations: dir_now.invalidations.saturating_sub(prev_dir.invalidations),
                        writebacks: dir_now.writebacks.saturating_sub(prev_dir.writebacks),
                    },
                );
                prev_dir = dir_now;
                let [upi, numalink, cxl] = sim.link_stats();
                obs.observe("link.upi", &upi);
                obs.observe("link.numalink", &numalink);
                obs.observe("link.cxl", &cxl);
                let (socket_mem, pool_mem) = sim.memory_stats();
                obs.observe("mem.socket", &socket_mem);
                if let Some(pool) = pool_mem {
                    obs.observe("mem.pool", &pool);
                }
                // Online invariant monitors (phase barrier): a healthy run
                // fires nothing, so the exports of a clean run are
                // unchanged by this call.
                obs.check_monitors(&PhaseCheck {
                    phase: phase_no,
                    pool_pages: map.pool_pages(),
                    pool_capacity_pages: map.pool_capacity_pages(),
                    planned_moves: plan.total(),
                    migration_limit_pages: self.config.migration_limit_pages,
                    memory_accesses: stats.memory_accesses(),
                    substrate_counters_monotone,
                });
            }
            sim.reset_servers();
            phase_stats.push(stats);
            // Close the checkpoint span opened above: the matching "end"
            // edge lets the Chrome exporter pair the two into a duration
            // event spanning the phase's step-C work.
            obs.event(
                EventLevel::Info,
                EventCategory::Checkpoint,
                "phase_checkpoint",
                || vec![("edge", FieldValue::Str("end".to_string()))],
            );
            obs.end_phase();
        }
        starnuma_prof::clear_phase();

        let (migrated, to_pool) = match self.config.migration {
            MigrationMode::Threshold { .. } => (policy.pages_migrated, policy.pages_to_pool),
            MigrationMode::OracleDynamic => (oracle.pages_migrated, 0),
            MigrationMode::Ablation(_) => (ablation_migrated, ablation_to_pool),
            _ => (0, 0),
        };
        // Preflight (SN106) rejects empty run shapes, so >= 1 measured phase.
        let mut result =
            RunResult::from_phases(phase_stats, migrated, to_pool, sim.directory_stats())
                .expect("preflight guarantees at least one measured phase"); // audit:allow(SN001)
        if let Some(reps) = replicas {
            result.replication = Some(reps.stats());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_topology::SystemParams;
    use starnuma_trace::Workload;

    fn quick_config(migration: MigrationMode, starnuma: bool) -> RunConfig {
        RunConfig {
            params: if starnuma {
                SystemParams::scaled_starnuma()
            } else {
                SystemParams::scaled_baseline()
            },
            phases: 2,
            instructions_per_phase: 15_000,
            warmup_instructions: 2_000,
            migration,
            ..RunConfig::default()
        }
    }

    #[test]
    fn poa_never_migrates_and_stays_local() {
        let r = Runner::new(
            Workload::Poa.profile(),
            quick_config(MigrationMode::Threshold { t0: false }, true),
        )
        .run();
        assert_eq!(r.pages_to_pool, 0, "POA places nothing in the pool");
        assert!(r.class_fracs[0] > 0.99, "POA accesses are local");
    }

    #[test]
    fn starnuma_pools_bfs_pages() {
        let r = Runner::new(
            Workload::Bfs.profile(),
            quick_config(MigrationMode::Threshold { t0: false }, true),
        )
        .run();
        assert!(r.pages_migrated > 0);
        assert!(
            r.pool_migration_frac() > 0.5,
            "most BFS migrations go to the pool (Table IV: 100%), got {}",
            r.pool_migration_frac()
        );
        assert!(r.class_frac(starnuma_topology::AccessClass::Pool) > 0.0);
    }

    #[test]
    fn baseline_oracle_never_pools() {
        let r = Runner::new(
            Workload::Bfs.profile(),
            quick_config(MigrationMode::OracleDynamic, false),
        )
        .run();
        assert_eq!(r.pages_to_pool, 0);
        assert_eq!(r.class_frac(starnuma_topology::AccessClass::Pool), 0.0);
        assert_eq!(r.class_frac(starnuma_topology::AccessClass::BtPool), 0.0);
    }

    #[test]
    fn starnuma_beats_baseline_on_bfs() {
        let base = Runner::new(
            Workload::Bfs.profile(),
            quick_config(MigrationMode::OracleDynamic, false),
        )
        .run();
        let star = Runner::new(
            Workload::Bfs.profile(),
            quick_config(MigrationMode::Threshold { t0: false }, true),
        )
        .run();
        assert!(
            star.ipc > base.ipc,
            "StarNUMA {} must beat baseline {}",
            star.ipc,
            base.ipc
        );
        assert!(star.amat_ns < base.amat_ns);
    }

    #[test]
    fn static_oracle_runs_without_migrations() {
        let r = Runner::new(
            Workload::Tpcc.profile(),
            quick_config(MigrationMode::StaticOracle, true),
        )
        .run();
        assert_eq!(r.pages_migrated, 0);
        assert!(r.ipc > 0.0);
        assert!(
            r.class_frac(starnuma_topology::AccessClass::Pool) > 0.0,
            "static oracle uses the pool for shared pages"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = Runner::new(
            Workload::Cc.profile(),
            quick_config(MigrationMode::Threshold { t0: false }, true),
        )
        .run();
        let b = Runner::new(
            Workload::Cc.profile(),
            quick_config(MigrationMode::Threshold { t0: false }, true),
        )
        .run();
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.amat_ns, b.amat_ns);
        assert_eq!(a.pages_migrated, b.pages_migrated);
    }
}
