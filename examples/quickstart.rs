//! Quickstart: compare the baseline 16-socket system against StarNUMA on
//! one workload and print the headline numbers.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use starnuma::{AccessClass, Experiment, ScaleConfig, SystemKind, Workload};

fn main() {
    let scale = ScaleConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let workload = Workload::Bfs;
    println!("StarNUMA quickstart — {workload} on a 16-socket system\n");

    let baseline = Experiment::new(workload, SystemKind::Baseline, scale.clone()).run();
    let starnuma = Experiment::new(workload, SystemKind::StarNuma, scale).run();

    println!("{:<28} {:>10} {:>10}", "", "Baseline", "StarNUMA");
    println!(
        "{:<28} {:>10.3} {:>10.3}",
        "per-core IPC", baseline.ipc, starnuma.ipc
    );
    println!(
        "{:<28} {:>9.0}ns {:>9.0}ns",
        "AMAT (measured)", baseline.amat_ns, starnuma.amat_ns
    );
    println!(
        "{:<28} {:>9.0}ns {:>9.0}ns",
        "  unloaded component", baseline.unloaded_amat_ns, starnuma.unloaded_amat_ns
    );
    println!(
        "{:<28} {:>9.0}ns {:>9.0}ns",
        "  contention component", baseline.contention_ns, starnuma.contention_ns
    );
    for class in AccessClass::ALL {
        println!(
            "{:<28} {:>9.1}% {:>9.1}%",
            format!("accesses: {}", class.label()),
            baseline.class_frac(class) * 100.0,
            starnuma.class_frac(class) * 100.0
        );
    }
    println!(
        "\nSpeedup: {:.2}x   (paper Fig. 8a: ~1.7x for BFS)",
        starnuma.ipc / baseline.ipc
    );
    println!(
        "Migrations to pool: {:.0}%  (paper Table IV: 100% for BFS)",
        starnuma.pool_migration_frac() * 100.0
    );
}
