//! Capacity planning: how big an MHD, and how fast a CXL path, does a
//! deployment actually need? Traces the speedup curves over pool capacity
//! and CXL latency for one workload and renders them as terminal charts.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! STARNUMA_SCALE=quick cargo run --release --example capacity_planning
//! ```

use starnuma::chart::{render_bars, Bar};
use starnuma::sweep::{break_even, sweep_cxl_latency, sweep_pool_capacity};
use starnuma::{ScaleConfig, Workload};

fn main() {
    let scale = ScaleConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let workload = Workload::Masstree;
    println!("Capacity planning for {workload}\n");

    println!("speedup vs pool capacity (fraction of the workload footprint):");
    let caps = [0.05, 0.1, 0.2, 0.4];
    let points = sweep_pool_capacity(workload, &scale, &caps);
    let bars: Vec<Bar> = points
        .iter()
        .map(|p| {
            Bar::new(
                format!("{:>4.0}%", p.x * 100.0),
                p.speedup,
                format!("{:.2}x", p.speedup),
            )
        })
        .collect();
    print!("{}", render_bars(&bars, 36, Some(1.0)));

    println!("\nspeedup vs one-way CXL latency (50 ns = paper default):");
    let lats = [50.0, 95.0, 140.0, 185.0];
    let points = sweep_cxl_latency(workload, &scale, &lats);
    let bars: Vec<Bar> = points
        .iter()
        .map(|p| {
            Bar::new(
                format!("{:>3.0}ns", p.x),
                p.speedup,
                format!("{:.2}x", p.speedup),
            )
        })
        .collect();
    print!("{}", render_bars(&bars, 36, Some(1.0)));
    match break_even(&points) {
        Some(x) => println!(
            "\nbreak-even: one-way CXL latency of ~{x:.0} ns ({:.0} ns end-to-end \
             pool access) erases the benefit.",
            80.0 + 2.0 * x
        ),
        None => println!(
            "\nno break-even in range: the pool keeps paying off even at 2-hop \
             parity, thanks to its dedicated bandwidth."
        ),
    }
    println!(
        "\nrule of thumb from the paper (§V-E): the hottest vagabond pages are \
         few — capacity\nbuys little beyond the knee, but latency and bandwidth \
         are make-or-break."
    );
}
