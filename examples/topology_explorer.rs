//! Topology explorer: prints the 16-socket machine's unloaded-latency
//! structure — the numbers at the heart of the paper's motivation (§II-A,
//! §III-B, §III-C) — without running any simulation.
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use starnuma::{CxlLatencyBreakdown, LatencyModel, Network, SystemParams};
use starnuma_types::{Location, SocketId};

fn main() {
    let params = SystemParams::full_scale_starnuma();
    let model = LatencyModel::new(params.clone());
    let net = Network::new(&params);

    println!("StarNUMA 16-socket topology (HPE Superdome FLEX-style)\n");
    println!(
        "{} chassis x {} sockets, {} cores total, pool: {}, {} directed links",
        params.num_chassis(),
        4,
        params.total_cores(),
        if params.has_pool { "yes" } else { "no" },
        net.link_count()
    );

    println!("\nUnloaded memory access latency from socket 0:");
    println!(
        "  local                  {:>6}",
        model.demand_access(SocketId::new(0), Location::Socket(SocketId::new(0)))
    );
    println!(
        "  1-hop (intra-chassis)  {:>6}",
        model.demand_access(SocketId::new(0), Location::Socket(SocketId::new(1)))
    );
    println!(
        "  2-hop (inter-chassis)  {:>6}",
        model.demand_access(SocketId::new(0), Location::Socket(SocketId::new(4)))
    );
    println!(
        "  CXL memory pool        {:>6}",
        model.demand_access(SocketId::new(0), Location::Pool)
    );

    println!("\nCXL pool access latency breakdown (Fig. 3):");
    let b = CxlLatencyBreakdown::paper();
    println!("  CPU CXL port (roundtrip)   {:>6}", b.cpu_port);
    println!("  MHD CXL port (roundtrip)   {:>6}", b.mhd_port);
    println!("  retimer (roundtrip)        {:>6}", b.retimer);
    println!("  link flight (both ways)    {:>6}", b.flight);
    println!("  MHD internal + directory   {:>6}", b.mhd_internal);
    println!("  = pool penalty             {:>6}", b.total());
    println!("  + on-processor and DRAM    {:>6}", params.mem_base);
    println!(
        "  = end-to-end               {:>6}",
        b.end_to_end(params.mem_base)
    );

    println!("\nCoherence block transfers (Fig. 4):");
    println!(
        "  3-hop socket-home, average over all (R,H,O): {}",
        model.average_three_hop_transfer()
    );
    println!(
        "  4-hop via the pool (two CXL roundtrips):     {}",
        model.four_hop_pool_transfer()
    );
    println!("  -> the pool path is FASTER on average, despite the extra hop.");

    println!("\nLatency matrix (ns, socket row -> socket column, first 8 sockets):");
    print!("      ");
    for t in 0..8 {
        print!("{:>6}", format!("S{t}"));
    }
    println!();
    for s in 0..8u16 {
        print!("{:>6}", format!("S{s}"));
        for t in 0..8u16 {
            let l = model.demand_access(SocketId::new(s), Location::Socket(SocketId::new(t)));
            print!("{:>6.0}", l.raw());
        }
        println!();
    }

    println!(
        "\nDirected links in the scaled simulation model: {}",
        Network::new(&SystemParams::scaled_starnuma()).link_count()
    );
    println!(
        "32-socket variant (§V-C, with a CXL switch): pool access {}",
        LatencyModel::new(
            SystemParams::full_scale_starnuma()
                .with_num_sockets(32)
                .expect("32 is a multiple of 4")
                .with_cxl_switch()
        )
        .demand_access(SocketId::new(0), Location::Pool)
    );
}
