//! Graph-analytics scenario: the four GAP kernels (SSSP, BFS, CC, TC) —
//! the workload family that motivates StarNUMA (§I: graphs exhibit
//! challenging irregular access patterns with many vagabond pages).
//!
//! Runs each kernel on the baseline, StarNUMA (T16), and StarNUMA (T0), and
//! prints the sharing profile that makes graphs hard to place.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use starnuma::{
    geomean, Experiment, ScaleConfig, SharingHistogram, SystemKind, TraceGenerator, Workload,
};

fn main() {
    let scale = ScaleConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let kernels = [Workload::Sssp, Workload::Bfs, Workload::Cc, Workload::Tc];

    println!("Vagabond pages in graph analytics (sharing-degree profile)\n");
    println!(
        "{:<6} {:>14} {:>16} {:>18}",
        "kernel", "private pages", ">8-sharer pages", ">8-sharer accesses"
    );
    for w in kernels {
        let mut gen = TraceGenerator::new(&w.profile(), 16, 4, scale.seed);
        let trace = gen.generate_phase(scale.instructions_per_phase);
        let h =
            SharingHistogram::from_trace_with_truth(&trace, |p| gen.page_sharers(p).len() as u32);
        let wide_pages = h.bins()[3].page_frac + h.bins()[4].page_frac;
        println!(
            "{:<6} {:>13.0}% {:>15.0}% {:>17.0}%",
            w.name(),
            h.private_page_frac() * 100.0,
            wide_pages * 100.0,
            h.wide_access_frac() * 100.0
        );
    }

    println!("\nSpeedup over the perfect-knowledge baseline\n");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>12}",
        "kernel", "T16", "T0", "AMAT cut", "pool migr."
    );
    let mut t16_speedups = Vec::new();
    for w in kernels {
        let base = Experiment::new(w, SystemKind::Baseline, scale.clone()).run();
        let t16 = Experiment::new(w, SystemKind::StarNuma, scale.clone()).run();
        let t0 = Experiment::new(w, SystemKind::StarNumaT0, scale.clone()).run();
        t16_speedups.push(t16.ipc / base.ipc);
        println!(
            "{:<6} {:>8.2}x {:>8.2}x {:>8.0}% {:>11.0}%",
            w.name(),
            t16.ipc / base.ipc,
            t0.ipc / base.ipc,
            (1.0 - t16.amat_ns / base.amat_ns) * 100.0,
            t16.pool_migration_frac() * 100.0
        );
    }
    println!(
        "\ngeomean (T16): {:.2}x — the paper reports up to 2.17x on graphs",
        geomean(&t16_speedups)
    );
}
