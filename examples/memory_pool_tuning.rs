//! Memory-pool design-space exploration: how pool capacity, CXL latency,
//! and CXL bandwidth affect StarNUMA's benefit — the knobs a system
//! architect provisioning an MHD actually controls (§V-C, §V-D, §V-E).
//!
//! ```sh
//! cargo run --release --example memory_pool_tuning
//! ```

use starnuma::{Experiment, ScaleConfig, SystemKind, Workload};

fn main() {
    let scale = ScaleConfig::from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // One latency-sensitive and one bandwidth-sensitive workload.
    let workloads = [Workload::Tc, Workload::Sssp];

    println!("Memory-pool design space (speedups over the baseline)\n");
    println!(
        "{:<30} {:>8} {:>8}",
        "configuration",
        workloads[0].name(),
        workloads[1].name()
    );

    let mut baselines = Vec::new();
    for w in workloads {
        baselines.push(Experiment::new(w, SystemKind::Baseline, scale.clone()).run());
    }

    for kind in [
        SystemKind::StarNuma,
        SystemKind::StarNumaSmallPool,
        SystemKind::StarNumaCxlSwitch,
        SystemKind::StarNumaHalfBw,
    ] {
        let mut row = format!("{:<30}", kind.label());
        for (w, base) in workloads.iter().zip(&baselines) {
            let r = Experiment::new(*w, kind, scale.clone()).run();
            row.push_str(&format!(" {:>7.2}x", r.ipc / base.ipc));
        }
        println!("{row}");
    }

    println!("\nReading the table:");
    println!("- a small pool (1/17 of the footprint) barely hurts: a small");
    println!("  fraction of hot vagabond pages draws most remote accesses;");
    println!("- an extra CXL switch (270 ns pool access) hits the");
    println!("  latency-sensitive workload (TC) hardest (paper §V-C);");
    println!("- halving CXL bandwidth hits the bandwidth-bound workload");
    println!("  (SSSP) hardest (paper §V-D).");
}
