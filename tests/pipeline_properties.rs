//! Property-style integration tests over the trace → migration → placement
//! pipeline (cross-crate invariants that unit tests can't see), driven by a
//! seeded in-repo PRNG for full determinism.

use starnuma_migration::{MetadataRegion, PageMap, PolicyConfig, ThresholdPolicy};
use starnuma_trace::{TraceGenerator, Workload};
use starnuma_types::{Location, PageId, RegionId, SimRng, SocketId, REGION_PAGES};

/// Pool occupancy never exceeds capacity across arbitrary multi-phase
/// migration histories, and every page is always somewhere valid.
#[test]
fn pool_capacity_invariant_over_phases() {
    let mut cases = SimRng::seed_from_u64(0xb0);
    for _case in 0..16 {
        let seed = cases.gen_range(0u64..1000);
        let phases = cases.gen_range(1usize..5);
        let capacity_regions = cases.gen_range(1u64..6);
        let profile = Workload::Bfs.profile();
        let mut gen = TraceGenerator::new(&profile, 16, 4, seed);
        let fp = profile.footprint_pages;
        let cap = capacity_regions * REGION_PAGES as u64;
        let first = gen.generate_phase(5_000);
        let mut map = PageMap::first_touch(fp, cap, &first, 4, 16);
        let mut policy =
            ThresholdPolicy::new(PolicyConfig::t16_scaled(64), map.num_regions(), true);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..phases {
            let trace = gen.generate_phase(5_000);
            let mut meta = MetadataRegion::new(map.num_regions(), 16, 16);
            for a in trace.iter() {
                let socket = a.core.socket(4);
                meta.record(a.addr.page().region(), socket, 1);
            }
            policy.decide(&meta, &mut map, &mut rng);
            assert!(map.pool_pages() <= cap);
            // Spot-check page locations are well-formed.
            for pfn in (0..fp).step_by(997) {
                match map.location(PageId::new(pfn)) {
                    Location::Pool => {}
                    Location::Socket(s) => assert!(s.index() < 16),
                }
            }
        }
        assert!(policy.pages_to_pool <= policy.pages_migrated);
    }
}

/// The trace generator only ever emits accesses to pages its socket
/// shares, for any workload and system size.
#[test]
fn traces_respect_sharing() {
    let mut cases = SimRng::seed_from_u64(0x5a1);
    for case in 0..16 {
        let seed = cases.gen_range(0u64..1000);
        let wl = Workload::ALL[case % Workload::ALL.len()];
        let sockets = [4usize, 8, 16][case % 3];
        let profile = wl.profile();
        let mut gen = TraceGenerator::new(&profile, sockets, 2, seed);
        let trace = gen.generate_phase(2_000);
        for a in trace.iter() {
            let socket = a.core.socket(2);
            assert!(gen.page_sharers(a.addr.page()).contains(&socket));
            assert!(a.addr.page().pfn() < profile.footprint_pages);
        }
    }
}

/// First-touch maps every page to a socket (never the pool) and is
/// deterministic.
#[test]
fn first_touch_is_socket_only_and_deterministic() {
    let mut cases = SimRng::seed_from_u64(0xf7);
    for _case in 0..8 {
        let seed = cases.gen_range(0u64..500);
        let profile = Workload::Tpcc.profile();
        let mut gen = TraceGenerator::new(&profile, 16, 4, seed);
        let trace = gen.generate_phase(3_000);
        let a = PageMap::first_touch(profile.footprint_pages, 100, &trace, 4, 16);
        let b = PageMap::first_touch(profile.footprint_pages, 100, &trace, 4, 16);
        assert_eq!(a.pool_pages(), 0);
        for pfn in (0..profile.footprint_pages).step_by(131) {
            assert_eq!(a.location(PageId::new(pfn)), b.location(PageId::new(pfn)));
        }
    }
}

/// Migration plans conserve pages: applying a plan to the pre-decision
/// snapshot yields exactly the post-decision map.
#[test]
fn plans_replay_exactly() {
    let mut cases = SimRng::seed_from_u64(0x9e9);
    for _case in 0..16 {
        let seed = cases.gen_range(0u64..500);
        let mut meta = MetadataRegion::new(8, 16, 16);
        let mut rng = SimRng::seed_from_u64(seed);
        for r in 0..8u64 {
            for s in 0..((seed + r) % 16 + 1) as u16 {
                meta.record(RegionId::new(r), SocketId::new(s), (seed % 300) as u32 + 10);
            }
        }
        let mut live = PageMap::from_fn(8 * 128, 3 * 128, |_| Location::Socket(SocketId::new(0)));
        let snapshot = live.clone();
        let mut policy = ThresholdPolicy::new(PolicyConfig::t16_scaled(100), 8, true);
        let plan = policy.decide(&meta, &mut live, &mut rng);
        let mut replay = snapshot;
        plan.apply(&mut replay);
        for pfn in 0..replay.len() {
            assert_eq!(
                replay.location(PageId::new(pfn)),
                live.location(PageId::new(pfn))
            );
        }
    }
}
