//! End-to-end simulation tests: quick-scale runs of the full pipeline
//! asserting the paper's *qualitative* results.

use starnuma::{AccessClass, Experiment, ScaleConfig, SystemKind, Workload};

fn run(w: Workload, k: SystemKind) -> starnuma::RunResult {
    Experiment::new(w, k, ScaleConfig::quick()).run()
}

#[test]
fn starnuma_beats_baseline_on_graphs() {
    for w in [Workload::Bfs, Workload::Cc] {
        let base = run(w, SystemKind::Baseline);
        let star = run(w, SystemKind::StarNuma);
        assert!(
            star.ipc > base.ipc,
            "{w}: StarNUMA {:.3} must beat baseline {:.3}",
            star.ipc,
            base.ipc
        );
        assert!(star.amat_ns < base.amat_ns, "{w}: AMAT must drop");
    }
}

#[test]
fn poa_is_numa_insensitive() {
    // §V-A: POA's first-touch placement already makes all accesses local;
    // no migration occurs and no data is placed in the pool.
    let base = run(Workload::Poa, SystemKind::Baseline);
    let star = run(Workload::Poa, SystemKind::StarNuma);
    assert!((star.ipc / base.ipc - 1.0).abs() < 0.02);
    assert_eq!(star.pages_to_pool, 0);
    assert!(star.class_frac(AccessClass::Local) > 0.99);
}

#[test]
fn pool_accesses_replace_two_hop() {
    let base = run(Workload::Bfs, SystemKind::Baseline);
    let star = run(Workload::Bfs, SystemKind::StarNuma);
    assert_eq!(base.class_frac(AccessClass::Pool), 0.0);
    assert!(star.class_frac(AccessClass::Pool) > 0.1);
    assert!(
        star.class_frac(AccessClass::TwoHop) < base.class_frac(AccessClass::TwoHop),
        "2-hop accesses must shrink"
    );
}

#[test]
fn block_transfers_shift_to_pool_path() {
    let base = run(Workload::Masstree, SystemKind::Baseline);
    let star = run(Workload::Masstree, SystemKind::StarNuma);
    assert_eq!(base.class_frac(AccessClass::BtPool), 0.0);
    assert!(
        star.class_frac(AccessClass::BtPool) > 0.0,
        "pool-homed read-write data must produce 4-hop transfers"
    );
}

#[test]
fn masstree_migrations_are_all_pool() {
    // Table IV: 100% for Masstree.
    let star = run(Workload::Masstree, SystemKind::StarNuma);
    assert!(star.pages_migrated > 0);
    assert!(star.pool_migration_frac() > 0.95);
}

#[test]
fn baseline_never_produces_pool_traffic() {
    for k in [
        SystemKind::Baseline,
        SystemKind::BaselineIsoBw,
        SystemKind::Baseline2xBw,
        SystemKind::BaselineFirstTouch,
        SystemKind::BaselineStaticOracle,
    ] {
        let r = run(Workload::Tpcc, k);
        assert_eq!(r.class_frac(AccessClass::Pool), 0.0, "{k}");
        assert_eq!(r.class_frac(AccessClass::BtPool), 0.0, "{k}");
        assert_eq!(r.pages_to_pool, 0, "{k}");
    }
}

#[test]
fn amat_decomposition_is_consistent() {
    for k in [SystemKind::Baseline, SystemKind::StarNuma] {
        let r = run(Workload::Sssp, k);
        assert!(
            (r.unloaded_amat_ns + r.contention_ns - r.amat_ns).abs() < 1.0,
            "unloaded + contention must equal total AMAT"
        );
        assert!(r.unloaded_amat_ns >= 80.0, "AMAT cannot beat local latency");
        let frac_sum: f64 = r.class_fracs.iter().sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run(Workload::Tc, SystemKind::StarNuma);
    let b = run(Workload::Tc, SystemKind::StarNuma);
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.amat_ns, b.amat_ns);
    assert_eq!(a.pages_migrated, b.pages_migrated);
    assert_eq!(a.class_fracs, b.class_fracs);
}

#[test]
fn seed_changes_results_but_not_conclusions() {
    let mut scale = ScaleConfig::quick();
    scale.seed = 1234;
    let base = Experiment::new(Workload::Bfs, SystemKind::Baseline, scale.clone()).run();
    let star = Experiment::new(Workload::Bfs, SystemKind::StarNuma, scale).run();
    assert!(
        star.ipc > base.ipc,
        "conclusion holds under a different seed"
    );
}

#[test]
fn higher_pool_latency_reduces_benefit_for_tc() {
    // Fig. 10's mechanism, at quick scale: TC's speedup comes from latency.
    let base = run(Workload::Tc, SystemKind::Baseline);
    let fast = run(Workload::Tc, SystemKind::StarNuma);
    let slow = run(Workload::Tc, SystemKind::StarNumaCxlSwitch);
    assert!(fast.ipc / base.ipc >= slow.ipc / base.ipc);
}

#[test]
fn directory_handles_coherence_traffic() {
    // §V-A: coherence is commonly occurring; the pool directory handles a
    // transaction every ~100 ns in the paper's full-scale runs.
    let star = run(Workload::Masstree, SystemKind::StarNuma);
    assert!(star.directory.pool_transactions > 0);
    assert!(
        star.directory.invalidations > 0,
        "50/50 R/W must invalidate"
    );
}
