//! Failure-injection and degenerate-configuration tests: the simulator must
//! behave sensibly at the edges of its configuration space, not just on the
//! paper's happy path.

use starnuma::{
    Experiment, MigrationMode, Modality, RunConfig, Runner, ScaleConfig, SystemKind, SystemParams,
    Workload,
};
use starnuma_migration::{PageMap, ReplicationConfig};
use starnuma_trace::{PhaseTrace, TraceGenerator};
use starnuma_types::{Location, PageId, SocketId};

fn tiny(mut cfg: RunConfig) -> RunConfig {
    cfg.phases = 1;
    cfg.instructions_per_phase = 4_000;
    cfg.warmup_instructions = 0;
    cfg
}

#[test]
fn zero_migration_limit_disables_migration() {
    let mut cfg = tiny(
        Experiment::new(Workload::Bfs, SystemKind::StarNuma, ScaleConfig::quick()).run_config(),
    );
    cfg.migration_limit_pages = 0;
    let r = Runner::new(Workload::Bfs.profile(), cfg).run();
    assert_eq!(r.pages_migrated, 0);
    assert!(r.ipc > 0.0, "the system still runs");
}

#[test]
fn zero_pool_capacity_starnuma_degrades_gracefully() {
    let mut cfg = tiny(
        Experiment::new(Workload::Bfs, SystemKind::StarNuma, ScaleConfig::quick()).run_config(),
    );
    cfg.pool_capacity_frac = 0.0;
    let r = Runner::new(Workload::Bfs.profile(), cfg).run();
    assert_eq!(r.pages_to_pool, 0, "nothing fits in an empty pool");
    assert_eq!(r.class_fracs[3], 0.0, "no pool accesses");
    assert!(r.ipc > 0.0);
}

#[test]
fn single_phase_zero_warmup_works() {
    let cfg = tiny(
        Experiment::new(Workload::Tc, SystemKind::Baseline, ScaleConfig::quick()).run_config(),
    );
    let r = Runner::new(Workload::Tc.profile(), cfg).run();
    assert_eq!(r.phases.len(), 1);
    assert!(r.amat_ns >= 80.0);
}

#[test]
fn tiny_instruction_budget_may_produce_no_accesses() {
    // FMI at MPKI 2.6 over 100 instructions: some cores emit nothing.
    let mut cfg = tiny(
        Experiment::new(Workload::Fmi, SystemKind::StarNuma, ScaleConfig::quick()).run_config(),
    );
    cfg.instructions_per_phase = 100;
    let r = Runner::new(Workload::Fmi.profile(), cfg).run();
    // No panic; stats remain well-formed.
    let frac_sum: f64 = r.class_fracs.iter().sum();
    assert!(frac_sum == 0.0 || (frac_sum - 1.0).abs() < 1e-9);
}

#[test]
fn eight_socket_system_runs() {
    let mut cfg = tiny(
        Experiment::new(Workload::Cc, SystemKind::StarNuma, ScaleConfig::quick()).run_config(),
    );
    cfg.params = SystemParams::scaled_starnuma()
        .with_num_sockets(8)
        .expect("8 sockets is valid");
    let r = Runner::new(Workload::Cc.profile(), cfg).run();
    assert!(r.ipc > 0.0);
    // 2 chassis: inter-chassis accesses still exist.
    assert!(r.class_fracs[2] > 0.0);
}

#[test]
fn thirty_two_socket_system_runs() {
    let mut cfg = tiny(
        Experiment::new(Workload::Tpcc, SystemKind::StarNuma, ScaleConfig::quick()).run_config(),
    );
    cfg.params = SystemParams::scaled_starnuma()
        .with_num_sockets(32)
        .expect("32 sockets is valid")
        .with_cxl_switch();
    let r = Runner::new(Workload::Tpcc.profile(), cfg).run();
    assert!(r.ipc > 0.0);
}

#[test]
fn mixed_modality_every_detailed_socket_choice_works() {
    for detailed in [0u16, 7, 15] {
        let mut cfg = tiny(
            Experiment::new(Workload::Bfs, SystemKind::Baseline, ScaleConfig::quick()).run_config(),
        );
        cfg.migration = MigrationMode::FirstTouchOnly;
        cfg.modality = Modality::Mixed {
            detailed_socket: SocketId::new(detailed),
        };
        let r = Runner::new(Workload::Bfs.profile(), cfg).run();
        assert!(r.ipc > 0.0, "detailed socket {detailed}");
    }
}

#[test]
fn replication_with_zero_budget_is_inert() {
    let mut cfg = tiny(
        Experiment::new(Workload::Tc, SystemKind::StarNuma, ScaleConfig::quick()).run_config(),
    );
    cfg.replication = Some(ReplicationConfig {
        min_sharers: 8,
        capacity_pages_per_socket: 0,
    });
    let r = Runner::new(Workload::Tc.profile(), cfg).run();
    let reps = r.replication.expect("enabled");
    assert_eq!(reps.regions_replicated, 0);
    assert_eq!(reps.peak_replica_pages, 0);
}

#[test]
fn all_writes_workload_never_replicates() {
    // A write-storm: replication must never trigger and collapses stay 0
    // (nothing was ever replicated).
    let mut profile = Workload::Masstree.profile();
    for class in &mut profile.classes {
        class.rw = starnuma_types::RwMix::new(0.0); // all stores
    }
    let mut cfg = tiny(
        Experiment::new(
            Workload::Masstree,
            SystemKind::StarNuma,
            ScaleConfig::quick(),
        )
        .run_config(),
    );
    cfg.replication = Some(ReplicationConfig::with_budget_frac(
        profile.footprint_pages,
        0.5,
    ));
    let r = Runner::new(profile, cfg).run();
    let reps = r.replication.expect("enabled");
    assert_eq!(reps.regions_replicated, 0);
    assert_eq!(reps.collapses, 0);
}

#[test]
fn single_page_degenerate_trace() {
    // Hand-built trace: every core hammers one block of one page.
    let profile = Workload::Poa.profile();
    let gen = TraceGenerator::new(&profile, 16, 4, 1);
    let _ = gen; // only needed for the footprint value
    let mut per_core = Vec::new();
    for core in 0..64u32 {
        per_core.push(
            (1..50u64)
                .map(|i| {
                    starnuma_types::MemAccess::new(
                        starnuma_types::CoreId::new(core),
                        starnuma_types::PhysAddr::new(4096),
                        if i % 2 == 0 {
                            starnuma_types::AccessType::Write
                        } else {
                            starnuma_types::AccessType::Read
                        },
                        i * 10,
                    )
                })
                .collect(),
        );
    }
    let trace = PhaseTrace { per_core };
    let mut map = PageMap::from_fn(profile.footprint_pages, 0, |_| {
        Location::Socket(SocketId::new(0))
    });
    let net = starnuma::Network::new(&SystemParams::scaled_baseline());
    let mut sim = starnuma_sim::TimingSim::new(net, starnuma_migration::MigrationCosts::paper());
    let stats = sim.run_phase(
        &trace,
        &mut map,
        &[],
        1.0,
        4,
        500,
        Modality::AllDetailed,
        true,
    );
    // One block ping-ponging among 64 cores: almost everything is coherence.
    assert!(stats.memory_accesses() + stats.llc_hits > 0);
    assert_eq!(
        map.location(PageId::new(1)),
        Location::Socket(SocketId::new(0))
    );
}

#[test]
fn sc3_preset_runs_with_doubled_cores() {
    let scale = ScaleConfig::quick().with_preset(starnuma::ScalePreset::Sc3);
    let r = Experiment::new(Workload::Fmi, SystemKind::StarNuma, scale).run();
    assert!(r.ipc > 0.0);
}
