//! Tier-1 gate for the observability layer: traces and metrics must be
//! bit-identical across worker counts. Each run owns its own `ObsSink`
//! (runs are single-threaded internally; the `JobPool` only schedules
//! whole runs), so the journal and the per-phase metric frames are pure
//! functions of the run configuration — `--jobs 4` output must match
//! `--jobs 1` byte for byte once rendered with a fixed [`RunMeta`].
//!
//! One `#[test]` owns everything: the worker-count override is
//! process-global and concurrent tests must not flip it under each other.

use starnuma::obs::{metrics_json, trace_jsonl, ObsReport, RunMeta};
use starnuma::{set_global_jobs, Experiment, ScaleConfig, SystemKind, Workload};

fn tiny() -> ScaleConfig {
    ScaleConfig {
        phases: 2,
        instructions_per_phase: 6_000,
        warmup_instructions: 0,
        ..ScaleConfig::quick()
    }
}

/// A fixed export header: the rendered files must not depend on anything
/// but the run itself, so the meta (which records the *harness* worker
/// count by design) is pinned here.
fn meta(system: SystemKind) -> RunMeta {
    RunMeta {
        workload: Workload::Tc.name().to_string(),
        system: system.label().to_string(),
        preset: "SC1".to_string(),
        jobs: 0,
        seed: 42,
        version: "test".to_string(),
    }
}

/// The `compare --trace-out`-style load: a limit-tuned baseline (whose
/// tuning pair itself fans out on the pool) plus two StarNUMA variants,
/// each rendered to the exact strings the CLI would write.
fn observed_exports() -> Vec<(String, String)> {
    [
        SystemKind::Baseline,
        SystemKind::StarNuma,
        SystemKind::StarNumaT0,
    ]
    .into_iter()
    .map(|kind| {
        let (result, report): (_, ObsReport) =
            Experiment::new(Workload::Tc, kind, tiny()).run_observed();
        assert!(result.ipc > 0.0, "{kind}: run did nothing");
        let m = meta(kind);
        (trace_jsonl(&m, &report), metrics_json(&m, &report.metrics))
    })
    .collect()
}

#[test]
fn obs_output_is_bit_identical_across_worker_counts() {
    set_global_jobs(1);
    let sequential = observed_exports();

    set_global_jobs(4);
    let parallel = observed_exports();

    for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(seq.0, par.0, "trace JSONL diverges for system #{i}");
        assert_eq!(seq.1, par.1, "metrics JSON diverges for system #{i}");
    }
    assert_eq!(sequential.len(), parallel.len());

    // The traces carry real content: the StarNUMA run observed pool
    // migrations and produced per-socket histograms.
    let starnuma_trace = &sequential[1].0;
    assert!(
        starnuma_trace.contains("\"type\":\"event\""),
        "no events in the StarNUMA trace"
    );
    assert!(
        starnuma_trace.contains("\"type\":\"hist\""),
        "no histograms in the StarNUMA trace"
    );
    assert!(
        starnuma_trace.contains("\"name\":\"phase_checkpoint\""),
        "no checkpoint events in the StarNUMA trace"
    );
}
