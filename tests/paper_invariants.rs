//! Cross-crate integration tests pinning every *analytic* number the paper
//! states — latencies, topology structure, parameter tables — end to end
//! through the public API.

use starnuma::{CxlLatencyBreakdown, LatencyModel, Network, ScalePreset, SystemParams};
use starnuma_types::{Location, Nanos, SocketId};

fn model() -> LatencyModel {
    LatencyModel::new(SystemParams::full_scale_starnuma())
}

#[test]
fn unloaded_latency_ladder() {
    // §II-A: 80 / 130 / 360 ns; §II-C: 180 ns pool.
    let m = model();
    let s0 = SocketId::new(0);
    assert_eq!(m.demand_access(s0, Location::Socket(s0)).raw(), 80.0);
    assert_eq!(
        m.demand_access(s0, Location::Socket(SocketId::new(2)))
            .raw(),
        130.0
    );
    assert_eq!(
        m.demand_access(s0, Location::Socket(SocketId::new(13)))
            .raw(),
        360.0
    );
    assert_eq!(m.demand_access(s0, Location::Pool).raw(), 180.0);
}

#[test]
fn latency_gap_is_4_5x() {
    // §II-A: "4.5× gap in unloaded latency".
    let m = model();
    let s0 = SocketId::new(0);
    let local = m.demand_access(s0, Location::Socket(s0)).raw();
    let worst = m
        .demand_access(s0, Location::Socket(SocketId::new(15)))
        .raw();
    assert_eq!(worst / local, 4.5);
}

#[test]
fn pool_is_2x_faster_than_two_hop_and_40pct_slower_than_one_hop() {
    // §II-C.
    let m = model();
    let s0 = SocketId::new(0);
    let pool = m.demand_access(s0, Location::Pool).raw();
    let one_hop = m
        .demand_access(s0, Location::Socket(SocketId::new(1)))
        .raw();
    let two_hop = m
        .demand_access(s0, Location::Socket(SocketId::new(8)))
        .raw();
    assert_eq!(two_hop / pool, 2.0);
    assert!((pool / one_hop - 1.4).abs() < 0.02);
}

#[test]
fn fig3_breakdown() {
    let b = CxlLatencyBreakdown::paper();
    assert_eq!(b.total().raw(), 100.0);
    assert_eq!(b.end_to_end(Nanos::new(80.0)).raw(), 180.0);
}

#[test]
fn fig4_block_transfer_latencies() {
    // §III-C: 333 ns average 3-hop; 200 ns 4-hop via pool; §V-A: 413/280 ns
    // accounting values.
    let m = model();
    assert!((m.average_three_hop_transfer().raw() - 333.0).abs() < 5.0);
    assert_eq!(m.four_hop_pool_transfer().raw(), 200.0);
    assert!((m.bt_socket_accounting().raw() - 413.0).abs() < 5.0);
    assert_eq!(m.bt_pool_accounting().raw(), 280.0);
}

#[test]
fn table1_and_table2_parameters() {
    let full = SystemParams::full_scale_starnuma();
    assert_eq!(full.total_cores(), 448); // 16 × 28
    assert_eq!(full.upi_bw.raw(), 20.8);
    assert_eq!(full.numalink_bw.raw(), 13.0);
    assert_eq!(full.cxl_bw.raw(), 40.0);
    let scaled = SystemParams::scaled_starnuma();
    assert_eq!(scaled.total_cores(), 64); // 16 × 4
    assert_eq!(scaled.upi_bw.raw(), 3.0);
    assert_eq!(scaled.cxl_bw.raw(), 6.0);
}

#[test]
fn interconnect_link_counts() {
    // §II-A: hierarchical interconnection with 28 inter-chassis NUMALinks
    // (we aggregate the 4 links per chassis pair into one directed bundle
    // per direction: 4×3 = 12 directed bundles), 68 coherent links total in
    // the §V-D accounting.
    let net = Network::new(&SystemParams::scaled_starnuma());
    // 48 intra-chassis UPI + 32 socket↔ASIC UPI + 12 NUMALink bundles +
    // 32 CXL (16 up, 16 down).
    assert_eq!(net.link_count(), 124);
    let baseline = Network::new(&SystemParams::scaled_baseline());
    assert_eq!(baseline.link_count(), 92);
}

#[test]
fn cxl_switch_and_32_socket_scaling() {
    // §V-C: a CXL switch adds ~90 ns roundtrip → 270 ns pool access, still
    // 25% below a 2-hop access.
    let m = LatencyModel::new(SystemParams::full_scale_starnuma().with_cxl_switch());
    let pool = m.demand_access(SocketId::new(0), Location::Pool).raw();
    assert_eq!(pool, 270.0);
    assert!(pool <= 360.0 * 0.75);
    // 32 sockets: 8 chassis, latencies unchanged, network builds.
    let params = SystemParams::full_scale_starnuma()
        .with_num_sockets(32)
        .expect("32 sockets is valid");
    assert_eq!(params.num_chassis(), 8);
    let net = Network::new(&params.clone().with_scale_preset(ScalePreset::Sc1));
    assert!(net.link_count() > 0);
}

#[test]
fn bandwidth_variants_match_section_5d() {
    use starnuma::BandwidthVariant;
    let iso =
        SystemParams::full_scale_baseline().with_bandwidth_variant(BandwidthVariant::BaselineIsoBw);
    assert!((iso.upi_bw.raw() - 26.4).abs() < 1e-9);
    assert!((iso.numalink_bw.raw() - 17.0).abs() < 1e-9);
    let double =
        SystemParams::full_scale_baseline().with_bandwidth_variant(BandwidthVariant::Baseline2xBw);
    assert!((double.upi_bw.raw() - 41.6).abs() < 1e-9);
    let half = SystemParams::full_scale_starnuma()
        .with_bandwidth_variant(BandwidthVariant::StarNumaHalfBw);
    assert!((half.cxl_bw.raw() - 20.0).abs() < 1e-9);
}
