//! Tier-1 gate: the parallel execution engine must be invisible in the
//! results. Every experiment is a pure function of its `(profile,
//! RunConfig)` — simulated time is virtual and each run owns its RNG — so
//! fanning independent runs across worker threads may only change
//! wall-clock time, never a single bit of any `RunResult`. This test runs
//! the same sweep and compare workloads with 1 and 4 workers and asserts
//! exact (`==`, i.e. bit-level for every float) equality.
//!
//! All checks live in one `#[test]` because the worker-count override is
//! process-global: concurrent tests must not flip it under each other.

use starnuma::sweep::{sweep_cxl_latency, sweep_pool_capacity, SweepPoint};
use starnuma::{set_global_jobs, Experiment, RunResult, ScaleConfig, SystemKind, Workload};

fn tiny() -> ScaleConfig {
    ScaleConfig {
        phases: 1,
        instructions_per_phase: 6_000,
        warmup_instructions: 0,
        ..ScaleConfig::quick()
    }
}

/// The `compare`-style harness load: a few systems on one workload,
/// including the baseline whose limit-tuning pair also runs on the pool.
fn compare_results() -> Vec<RunResult> {
    [
        SystemKind::Baseline,
        SystemKind::StarNuma,
        SystemKind::StarNumaT0,
    ]
    .into_iter()
    .map(|kind| Experiment::new(Workload::Tc, kind, tiny()).run())
    .collect()
}

fn capacity_sweep() -> Vec<SweepPoint> {
    sweep_pool_capacity(Workload::Bfs, &tiny(), &[0.05, 0.1, 0.2, 0.4])
}

fn latency_sweep() -> Vec<SweepPoint> {
    sweep_cxl_latency(Workload::Bfs, &tiny(), &[50.0, 95.0, 140.0])
}

#[test]
fn parallel_runs_are_bit_identical_to_sequential() {
    set_global_jobs(1);
    let seq_compare = compare_results();
    let seq_capacity = capacity_sweep();
    let seq_latency = latency_sweep();

    set_global_jobs(4);
    let par_compare = compare_results();
    let par_capacity = capacity_sweep();
    let par_latency = latency_sweep();

    assert_eq!(
        seq_compare, par_compare,
        "compare runs diverge across worker counts"
    );
    assert_eq!(
        seq_capacity, par_capacity,
        "capacity sweep diverges across worker counts"
    );
    assert_eq!(
        seq_latency, par_latency,
        "latency sweep diverges across worker counts"
    );

    // The runs did something: IPC is positive everywhere.
    assert!(seq_compare.iter().all(|r| r.ipc > 0.0));
    assert!(seq_capacity.iter().all(|p| p.speedup > 0.0));
}
