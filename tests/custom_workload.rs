//! End-to-end test of the custom-workload path: a downstream user
//! characterizes their own application with [`ProfileBuilder`] and runs it
//! through the full pipeline.

use starnuma::{Experiment, MigrationMode, Runner, ScaleConfig, SystemKind, Workload};
use starnuma_trace::{ProfileBuilder, SharerCount};
use starnuma_types::RwMix;

fn custom_profile(wide_access: f64) -> starnuma_trace::WorkloadProfile {
    ProfileBuilder::new(Workload::Masstree)
        .footprint_pages(8_192)
        .mpki(20.0)
        .ipc_single_socket(0.9)
        .mlp(6)
        .class(
            0.6,
            1.0 - wide_access,
            SharerCount::exactly(1),
            RwMix::new(0.7),
            true,
        )
        .class(
            0.4,
            wide_access,
            SharerCount::range(12, 16),
            RwMix::new(0.6),
            false,
        )
        .skew(0.2, 0.7)
        .build()
}

fn run(profile: starnuma_trace::WorkloadProfile, kind: SystemKind) -> starnuma::RunResult {
    let mut cfg = Experiment::new(Workload::Masstree, kind, ScaleConfig::quick()).run_config();
    if kind == SystemKind::Baseline {
        cfg.migration = MigrationMode::FirstTouchOnly;
    }
    Runner::new(profile, cfg).run()
}

#[test]
fn custom_vagabond_heavy_workload_benefits_from_pool() {
    let base = run(custom_profile(0.7), SystemKind::Baseline);
    let star = run(custom_profile(0.7), SystemKind::StarNuma);
    assert!(
        star.ipc > base.ipc,
        "70% vagabond accesses must benefit: {} vs {}",
        star.ipc,
        base.ipc
    );
    assert!(star.pool_migration_frac() > 0.5);
}

#[test]
fn custom_private_heavy_workload_is_insensitive() {
    let base = run(custom_profile(0.05), SystemKind::Baseline);
    let star = run(custom_profile(0.05), SystemKind::StarNuma);
    let speedup = star.ipc / base.ipc;
    assert!(
        (0.9..1.25).contains(&speedup),
        "5% vagabond accesses: little to gain, got {speedup}"
    );
}

#[test]
fn pool_benefit_grows_with_vagabond_share() {
    let mut prev = 0.0;
    for wide in [0.1, 0.4, 0.7] {
        let base = run(custom_profile(wide), SystemKind::Baseline);
        let star = run(custom_profile(wide), SystemKind::StarNuma);
        let speedup = star.ipc / base.ipc;
        assert!(
            speedup >= prev - 0.08,
            "benefit should be non-decreasing in vagabond share \
             (wide={wide}: {speedup:.2} after {prev:.2})"
        );
        prev = speedup;
    }
    assert!(prev > 1.1, "the heaviest-sharing point must clearly win");
}
