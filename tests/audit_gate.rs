//! Tier-1 audit gate: the workspace must stay lint-clean, invalid models
//! must surface exact `SNxxx` diagnostics *before* simulation starts, and
//! same-seed runs must be bit-identical.

use std::path::Path;

use starnuma_audit::{lint_workspace, render_human, Baseline};
use starnuma_migration::PolicyConfig;
use starnuma_sim::{RunConfig, Runner};
use starnuma_topology::{Network, SystemParams};
use starnuma_trace::Workload;
use starnuma_types::{Nanos, Severity, StarNumaError};

#[test]
fn workspace_is_lint_clean_modulo_the_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = lint_workspace(root).expect("workspace is readable");
    let baseline = Baseline::load(&root.join("ci").join("lint_baseline.json"))
        .expect("ci/lint_baseline.json is present and well-formed");
    let (remaining, suppressed) = baseline.apply(findings);
    assert!(
        remaining.is_empty(),
        "audit self-lint (SN001–SN012) must stay clean beyond the baseline:\n{}",
        render_human(&remaining)
    );
    // Every baseline entry must still correspond to a live finding — a
    // stale baseline hides future regressions at the listed locations.
    assert_eq!(
        suppressed.len(),
        baseline.len(),
        "stale baseline entries; regenerate with `starnuma lint --update-baseline`"
    );
}

fn invalid_model_codes(err: StarNumaError) -> Vec<&'static str> {
    match err {
        StarNumaError::InvalidModel(diags) => diags.iter().map(|d| d.code).collect(),
        other => panic!("expected InvalidModel, got {other}"),
    }
}

#[test]
fn negative_latency_is_rejected_with_sn101() {
    let mut config = RunConfig::default();
    config.params.mem_base = Nanos::new(-1.0);
    let err = Runner::try_new(Workload::Bfs.profile(), config).expect_err("invalid");
    assert_eq!(invalid_model_codes(err), ["SN101"]);
}

#[test]
fn out_of_range_pool_fraction_is_rejected_with_sn102() {
    let config = RunConfig {
        pool_capacity_frac: 1.5,
        ..RunConfig::default()
    };
    let err = Runner::try_new(Workload::Tpcc.profile(), config).expect_err("invalid");
    assert_eq!(invalid_model_codes(err), ["SN102"]);
}

#[test]
fn pool_below_hot_set_warns_sn102_but_still_runs() {
    let config = RunConfig {
        pool_capacity_frac: 0.01,
        ..RunConfig::default()
    };
    let profile = Workload::Bfs.profile();
    let diags = Runner::preflight(&profile, &config);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "SN102" && d.severity == Severity::Warning),
        "expected an SN102 capacity warning, got: {diags:?}"
    );
    assert!(
        Runner::try_new(profile, config).is_ok(),
        "warnings must not block the run"
    );
}

#[test]
fn non_monotone_thresholds_are_rejected_with_sn103() {
    let mut cfg = PolicyConfig::t16_scaled(100);
    cfg.hi_init = cfg.hi_max + 1;
    cfg.lo_init = cfg.lo_max + 1;
    let codes: Vec<&str> = cfg.diagnostics().iter().map(|d| d.code).collect();
    assert_eq!(codes, ["SN103", "SN103"]);
    assert!(PolicyConfig::t16_scaled(100).diagnostics().is_empty());
    assert!(PolicyConfig::t0(16).diagnostics().is_empty());
}

#[test]
fn disconnected_topology_is_rejected_with_sn104() {
    let mut params = SystemParams::scaled_baseline();
    params.numalinks_per_chassis_pair = 0;
    let err = Network::try_new(&params).expect_err("invalid");
    let StarNumaError::InvalidModel(diags) = err else {
        panic!("expected InvalidModel");
    };
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "SN104");
    assert!(diags[0].message.contains("disconnected"));
}

#[test]
fn diagnostics_accumulate_across_layers() {
    let mut config = RunConfig::default();
    config.params.upi_one_way = Nanos::new(0.0);
    config.params.numalinks_per_chassis_pair = 0;
    config.pool_capacity_frac = -0.5;
    let err = Runner::try_new(Workload::Cc.profile(), config).expect_err("invalid");
    assert_eq!(invalid_model_codes(err), ["SN101", "SN104", "SN102"]);
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let config = RunConfig {
        phases: 2,
        instructions_per_phase: 12_000,
        warmup_instructions: 2_000,
        ..RunConfig::default()
    };
    let a = Runner::new(Workload::Bfs.profile(), config.clone()).run();
    let b = Runner::new(Workload::Bfs.profile(), config).run();
    assert_eq!(a, b, "two same-seed runs must produce identical RunResults");
}
