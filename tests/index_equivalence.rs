//! Tier-1 gate for the deterministic-index swap (PR 5): replacing the
//! hot-path `BTreeMap`s with [`starnuma_types::DetMap`] must be invisible
//! in every result. None of the swapped maps (coherence directory entries,
//! TLB annex index, in-flight migration timing, replica masks) is iterated
//! on the hot path, so `RunResult`s and rendered obs exports must stay
//! **bit-identical** to the BTreeMap baseline — the golden digests below
//! were recorded against that baseline (commit before the swap) and every
//! workload profile must still hash to them, at `--jobs 1` and `--jobs 4`.
//!
//! Regenerating goldens (only when an *intentional* model change lands):
//! `STARNUMA_BLESS=1 cargo test --test index_equivalence -- --nocapture`
//! prints the new table.
//!
//! One `#[test]` owns everything: the worker-count override is
//! process-global and concurrent tests must not flip it under each other.

use starnuma::obs::{metrics_json, trace_jsonl, RunMeta};
use starnuma::{set_global_jobs, Experiment, ScaleConfig, SystemKind, Workload};

/// Golden FNV-1a digests of `(RunResult debug, trace JSONL, metrics JSON)`
/// per workload. Order follows `Workload::ALL`. Last blessed when the
/// `phase_checkpoint` journal event gained paired begin/end `edge`
/// markers (an intentional trace-format change; results were unchanged —
/// `prof_determinism` guards that separately).
const GOLDEN: [(&str, u64); 8] = [
    ("SSSP", 0x5e9e055a702c2421),
    ("BFS", 0x827893079d93b9f1),
    ("CC", 0x376fb4797964dabe),
    ("TC", 0x631c9e5758b24d70),
    ("Masstree", 0xa15f49dc35cd8da3),
    ("TPCC", 0xb6016fe329e84dad),
    ("FMI", 0xd70cb127a163a8f9),
    ("POA", 0xd09527d41dee0dfe),
];

fn tiny() -> ScaleConfig {
    ScaleConfig {
        phases: 2,
        instructions_per_phase: 6_000,
        warmup_instructions: 0,
        ..ScaleConfig::quick()
    }
}

fn meta(workload: Workload) -> RunMeta {
    RunMeta {
        workload: workload.name().to_string(),
        system: SystemKind::StarNuma.label().to_string(),
        preset: "SC1".to_string(),
        jobs: 0,
        seed: 42,
        version: "gate".to_string(),
    }
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One workload's digest: RunResult (every float, bit-exact via Debug's
/// shortest-roundtrip rendering) + both rendered obs exports.
fn digest(workload: Workload) -> u64 {
    let (result, report) = Experiment::new(workload, SystemKind::StarNuma, tiny()).run_observed();
    let m = meta(workload);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv1a(format!("{result:?}").as_bytes(), h);
    h = fnv1a(trace_jsonl(&m, &report).as_bytes(), h);
    h = fnv1a(metrics_json(&m, &report.metrics).as_bytes(), h);
    h
}

#[test]
fn index_swap_is_bit_identical_across_workloads_and_jobs() {
    set_global_jobs(1);
    let sequential: Vec<(Workload, u64)> = Workload::ALL.iter().map(|&w| (w, digest(w))).collect();

    set_global_jobs(4);
    let parallel: Vec<(Workload, u64)> = Workload::ALL.iter().map(|&w| (w, digest(w))).collect();

    for ((w, seq), (_, par)) in sequential.iter().zip(&parallel) {
        assert_eq!(
            seq,
            par,
            "{}: digest diverges between --jobs 1 and --jobs 4",
            w.name()
        );
    }

    if std::env::var("STARNUMA_BLESS").is_ok() {
        println!("const GOLDEN: [(&str, u64); 8] = [");
        for (w, d) in &sequential {
            println!("    (\"{}\", {d:#018x}),", w.name());
        }
        println!("];");
        return;
    }

    for ((w, d), (gw, gd)) in sequential.iter().zip(GOLDEN.iter()) {
        assert_eq!(w.name(), *gw, "golden table order drifted");
        assert_eq!(
            *d,
            *gd,
            "{}: result/export digest {d:#018x} != golden {gd:#018x} — the index \
             swap (or a model change) altered observable output; if intentional, \
             regenerate with STARNUMA_BLESS=1",
            w.name()
        );
    }
}
