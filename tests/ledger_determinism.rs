//! Tier-1 gate for the run ledger and the online invariant monitors
//! (PR 9): observation must never perturb the simulation.
//!
//! Three properties, each across all eight workloads:
//!
//! 1. **Ledger records are scheduling-invariant.** A [`RunRecord`] built
//!    from a `--jobs 1` run renders byte-identically to one built from a
//!    `--jobs 4` run once the host-time fields (`wall_ns`, profiler
//!    sites) are pinned — everything a record carries is simulation
//!    output, and simulation output is bit-identical at any worker count.
//! 2. **Records survive the JSON round trip.** `to_json_line` →
//!    `from_json_line` → `to_json_line` is the identity on bytes, so a
//!    ledger re-read months later still digests to the same report.
//! 3. **Monitors observe without touching.** Healthy runs pass every
//!    phase-barrier check with zero violations, and an injected
//!    `pool_occupancy` fault fires exactly one deterministic violation
//!    while leaving the `RunResult` bit-identical to the unfaulted run.
//!
//! One `#[test]` owns everything: the worker-count override is
//! process-global and concurrent tests must not flip it under each other.

use starnuma::obs::{ObsReport, RunExtras, RunMeta, RunRecord};
use starnuma::{set_global_jobs, Experiment, RunResult, ScaleConfig, SystemKind, Workload};
use starnuma_types::fnv1a_digest;

fn tiny() -> ScaleConfig {
    ScaleConfig {
        phases: 2,
        instructions_per_phase: 6_000,
        warmup_instructions: 0,
        ..ScaleConfig::quick()
    }
}

fn meta(workload: Workload, jobs: u64) -> RunMeta {
    RunMeta {
        workload: workload.name().to_string(),
        system: SystemKind::StarNuma.label().to_string(),
        preset: "SC1".to_string(),
        jobs,
        seed: 42,
        version: "gate".to_string(),
    }
}

/// One workload's ledger line with host-time fields pinned: `wall_ns` 0,
/// no profiler sites, and `jobs` fixed at 0 so the two schedules render
/// the same identity fields.
fn ledger_line(workload: Workload) -> (String, RunResult, ObsReport) {
    let e = Experiment::new(workload, SystemKind::StarNuma, tiny());
    let (result, report) = e.run_observed();
    let extras = RunExtras {
        config_digest: fnv1a_digest(format!("{:?}", e.run_config()).as_bytes()),
        result_digest: fnv1a_digest(format!("{result:?}").as_bytes()),
        wall_ns: 0,
        ipc: result.ipc,
        amat_ns: result.amat_ns,
        pages_migrated: result.pages_migrated,
        pages_to_pool: result.pages_to_pool,
        top_sites: Vec::new(),
    };
    let record = RunRecord::from_observed(&meta(workload, 0), &report, &report.monitor, &extras);
    (record.to_json_line(), result, report)
}

#[test]
fn ledger_records_and_monitor_verdicts_are_deterministic() {
    set_global_jobs(1);
    let sequential: Vec<(Workload, String, RunResult, ObsReport)> = Workload::ALL
        .iter()
        .map(|&w| {
            let (line, result, report) = ledger_line(w);
            (w, line, result, report)
        })
        .collect();

    set_global_jobs(4);
    for (w, seq_line, _, seq_report) in &sequential {
        let (par_line, _, par_report) = ledger_line(*w);

        // 1. Scheduling invariance: byte-identical ledger lines.
        assert_eq!(
            seq_line,
            &par_line,
            "{}: ledger record diverges between --jobs 1 and --jobs 4",
            w.name()
        );

        // 3a. Healthy runs are monitor-clean, and every phase was checked.
        for report in [seq_report, &par_report] {
            assert!(
                report.monitor.is_clean(),
                "{}: unexpected monitor violations {:?}",
                w.name(),
                report.monitor.violations
            );
            assert_eq!(
                report.monitor.checks,
                tiny().phases as u64,
                "{}: monitors must run once per phase barrier",
                w.name()
            );
        }

        // 2. JSON round trip is the identity on bytes.
        let reparsed = RunRecord::from_json_line(seq_line)
            .unwrap_or_else(|| panic!("{}: ledger line failed to re-parse", w.name()));
        assert_eq!(
            seq_line,
            &reparsed.to_json_line(),
            "{}: to_json_line/from_json_line round trip is lossy",
            w.name()
        );
    }

    // 3b. An injected fault fires exactly once, deterministically, and
    // the observed simulation result is untouched by the firing monitor.
    set_global_jobs(1);
    for &w in &Workload::ALL {
        let e = Experiment::new(w, SystemKind::StarNuma, tiny());
        let (clean_result, _) = e.run_observed();
        let (faulted_result, faulted_report) = e.run_observed_faulted(Some("pool_occupancy"));
        assert_eq!(
            faulted_report.monitor.violations.len(),
            1,
            "{}: injected fault must fire exactly once",
            w.name()
        );
        assert_eq!(
            faulted_report.monitor.violations[0].monitor,
            "pool_occupancy",
            "{}: wrong monitor fired",
            w.name()
        );
        assert_eq!(
            format!("{clean_result:?}"),
            format!("{faulted_result:?}"),
            "{}: a firing monitor perturbed the simulation result",
            w.name()
        );
    }
}
