//! Tier-1 gate for the self-profiler's wall-clock isolation: enabling
//! [`starnuma::prof`] must not change a single bit of any simulation
//! output. The profiler only *reads* [`starnuma::prof::ProfClock`] —
//! nothing it measures feeds back into simulated time — so for every
//! workload the `RunResult`, the trace JSONL, and the metrics JSON must
//! be identical profiled vs unprofiled, and identical again across
//! worker counts while profiling is on.
//!
//! One `#[test]` owns everything: both the worker-count override and the
//! profiler enable flag are process-global, and concurrent tests must
//! not flip them under each other.

use starnuma::obs::{metrics_json, trace_jsonl, RunMeta};
use starnuma::{prof, set_global_jobs, Experiment, RunResult, ScaleConfig, SystemKind, Workload};

fn tiny() -> ScaleConfig {
    ScaleConfig {
        phases: 2,
        instructions_per_phase: 6_000,
        warmup_instructions: 0,
        ..ScaleConfig::quick()
    }
}

/// A fixed export header, as in `obs_determinism`: the rendered files
/// must be pure functions of the run itself.
fn meta(workload: Workload) -> RunMeta {
    RunMeta {
        workload: workload.name().to_string(),
        system: SystemKind::StarNuma.label().to_string(),
        preset: "SC1".to_string(),
        jobs: 0,
        seed: 42,
        version: "test".to_string(),
    }
}

/// Every workload on StarNUMA with observability on, rendered to the
/// exact strings the CLI would write.
fn all_workload_exports() -> Vec<(RunResult, String, String)> {
    Workload::ALL
        .into_iter()
        .map(|w| {
            let (result, report) = Experiment::new(w, SystemKind::StarNuma, tiny()).run_observed();
            assert!(result.ipc > 0.0, "{w}: run did nothing");
            let m = meta(w);
            let trace = trace_jsonl(&m, &report);
            let metrics = metrics_json(&m, &report.metrics);
            (result, trace, metrics)
        })
        .collect()
}

#[test]
fn profiling_never_changes_simulation_output() {
    // Reference: unprofiled, sequential.
    set_global_jobs(1);
    prof::set_enabled(false);
    prof::reset();
    let plain = all_workload_exports();

    // Profiled, sequential.
    prof::reset();
    prof::set_enabled(true);
    let profiled = all_workload_exports();
    prof::set_enabled(false);
    let report_seq = prof::take_report();

    // Profiled, four workers: the worker threads flush their scope
    // tables into the same global registry at exit.
    set_global_jobs(4);
    prof::reset();
    prof::set_enabled(true);
    let profiled_par = all_workload_exports();
    prof::set_enabled(false);
    let report_par = prof::take_report();

    for (i, ((p, pr), par)) in plain.iter().zip(&profiled).zip(&profiled_par).enumerate() {
        let w = Workload::ALL[i];
        assert_eq!(p.0, pr.0, "{w}: RunResult diverges profiled vs not");
        assert_eq!(p.1, pr.1, "{w}: trace JSONL diverges profiled vs not");
        assert_eq!(p.2, pr.2, "{w}: metrics JSON diverges profiled vs not");
        assert_eq!(p.0, par.0, "{w}: RunResult diverges at jobs=4 profiled");
        assert_eq!(p.1, par.1, "{w}: trace JSONL diverges at jobs=4 profiled");
        assert_eq!(p.2, par.2, "{w}: metrics JSON diverges at jobs=4 profiled");
    }
    assert_eq!(plain.len(), Workload::ALL.len());

    // The profiled passes actually recorded attribution, and the merged
    // report is canonical: same sites in the same order either way.
    // (Totals differ — wall time is nondeterministic by nature — but the
    // *shape* of the attribution must not depend on scheduling.)
    assert!(!report_seq.is_empty(), "sequential pass recorded nothing");
    assert!(!report_par.is_empty(), "parallel pass recorded nothing");
    let shape = |r: &prof::ProfReport| {
        r.merged_edges()
            .iter()
            .map(|e| (e.parent, e.site))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        shape(&report_seq),
        shape(&report_par),
        "attribution shape diverges across worker counts"
    );
    let timing_calls = |r: &prof::ProfReport| {
        r.merged_edges()
            .iter()
            .filter(|e| e.site == prof::Site::Timing)
            .map(|e| e.calls)
            .sum::<u64>()
    };
    assert_eq!(
        timing_calls(&report_seq),
        timing_calls(&report_par),
        "scope call counts diverge across worker counts"
    );
}
